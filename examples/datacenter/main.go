// Datacenter: automatic single/dual-layer selection (§7.5) on a K=4
// fat-tree. Cross-pod reroutes in a fat-tree produce only forward
// segments, so the policy picks the lean single-layer mode — the paper's
// Fig. 7b observation ("the fat-tree only has forward segments").
//
//	go run ./examples/datacenter
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"p4update"
)

func main() {
	g := p4update.FatTree(4)
	rng := rand.New(rand.NewSource(11))
	net := p4update.NewNetwork(g,
		p4update.WithSeed(11),
		p4update.WithCongestionFreedom(),
		// Per §9.1 the fat-tree control latency is sampled from a normal
		// distribution (Huang et al.).
		p4update.WithSampledControlLatency(func() time.Duration {
			d := time.Duration((4 + 2*rng.NormFloat64()) * float64(time.Millisecond))
			if d < 500*time.Microsecond {
				d = 500 * time.Microsecond
			}
			return d
		}),
	)

	edges := p4update.EdgeSwitches(g)
	src, dst := edges[0], edges[7] // cross-pod pair

	paths := g.KShortestPaths(src, dst, 4, p4update.ByHops)
	if len(paths) < 2 {
		log.Fatal("no alternative paths in the fat-tree")
	}
	flow, err := net.AddFlow(src, dst, paths[0], 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flow %s -> %s along %s\n",
		g.Node(src).Name, g.Node(dst).Name, pathNames(g, paths[0]))

	// Reroute onto an equal-cost alternative: forward segments only.
	u, err := net.UpdateFlow(flow, paths[1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reroute to %s\n", pathNames(g, paths[1]))
	fmt.Printf("  policy picked: %v (forward-only detour -> single layer)\n", u.Plan.Type)
	net.Run()
	if !u.Done() {
		log.Fatal("update did not complete")
	}
	fmt.Printf("  converged in %v\n\n", u.Completed-u.Sent)

	// Rerouting back is again a small forward-only detour: the policy
	// stays with single layer (fat-trees have no backward segments
	// between equal-cost paths).
	u2, err := net.UpdateFlow(flow, paths[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reroute back to %s\n", pathNames(g, paths[0]))
	fmt.Printf("  policy picked: %v (fat-trees have only forward segments)\n", u2.Plan.Type)
	net.Run()
	if !u2.Done() {
		log.Fatal("second update did not complete")
	}
	fmt.Printf("  converged in %v\n", u2.Completed-u2.Sent)
}

func pathNames(g *p4update.Topology, path []p4update.NodeID) string {
	out := ""
	for i, n := range path {
		if i > 0 {
			out += "→"
		}
		out += g.Node(n).Name
	}
	return out
}
