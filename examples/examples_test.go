// Package examples_test smoke-tests every runnable example: each one
// must build and run to completion with a zero exit status within a
// short timeout. The examples double as executable documentation, so a
// broken example is a broken doc.
package examples_test

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples build real binaries; skipped in -short mode")
	}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := e.Name()
		if _, err := os.Stat(filepath.Join(dir, "main.go")); err != nil {
			continue
		}
		found++
		t.Run(dir, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, "go", "run", "./"+dir)
			out, err := cmd.CombinedOutput()
			if ctx.Err() != nil {
				t.Fatalf("example %s timed out:\n%s", dir, out)
			}
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", dir, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s produced no output", dir)
			}
		})
	}
	if found == 0 {
		t.Fatal("no example programs found")
	}
}
