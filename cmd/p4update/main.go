// Command p4update regenerates the evaluation of the P4Update paper
// (CoNEXT '21): the inconsistent-update demonstration (Fig. 2), the
// fast-forward demonstration (Fig. 4), the total-update-time CDFs
// (Fig. 7a–f) and the control-plane preparation-time ratios (Fig. 8a/b).
//
// Usage:
//
//	p4update -exp all            # everything, paper-scale runs
//	p4update -exp fig7 -runs 10  # just Fig. 7 with 10 runs per series
//	p4update -exp fig7 -cdf      # additionally dump CDF rows for plotting
//	p4update -exp fig7 -workers 8 -json out.json
//	                             # shard trials across 8 workers and export
//	                             # per-trial metrics; the merged output is
//	                             # identical to a -workers 1 run
//	p4update -exp scale -topo fattree16 -scale-flows 5000 -shards 8
//	                             # run each trial on 8 region workers of the
//	                             # sharded event engine; traces and metrics
//	                             # are byte-identical to -shards 1
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"p4update"
	"p4update/internal/deploy"
	"p4update/internal/experiments"
	"p4update/internal/faults"
	"p4update/internal/topo"
	"p4update/internal/trace"
	"p4update/internal/wiring"
)

func main() {
	var (
		exp          = flag.String("exp", "all", "experiment: fig2|fig4|fig7|fig7six|fig8|scale|churn|faults|soak|deploy|all")
		runs         = flag.Int("runs", 30, "runs per series (the paper uses 30; churn defaults to 1 unless set)")
		systemsSel   = flag.String("systems", "all", "comma-separated registered update systems to evaluate (grid experiments; \"all\" = every registered system)")
		preps        = flag.Int("updates", 1000, "updates per Fig. 8 run (the paper uses 1000)")
		seed         = flag.Int64("seed", 1, "base simulation seed")
		cdf          = flag.Bool("cdf", false, "dump full CDF series for plotting")
		scaleFlows   = flag.Int("scale-flows", 500, "simultaneous flow updates per scale trial (100–5000)")
		topoSel      = flag.String("topo", "all", "scale/churn topology: "+validTopos()+"|all")
		arrivalRate  = flag.Float64("arrival-rate", 12000, "churn: Poisson flow arrival rate (flows per second of virtual time)")
		churnDur     = flag.Duration("churn-duration", 25*time.Second, "churn: virtual-time admission window")
		liveFlows    = flag.Int("live-flows", 100_000, "churn: target steady-state live-flow population (mean lifetime = live-flows / arrival-rate)")
		rerouteEvery = flag.Duration("reroute-every", 50*time.Millisecond, "churn: mean interval between link perturbations (0 disables reroutes)")
		workers      = flag.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS)")
		shards       = flag.Int("shards", 1, "region workers per trial (sharded event engine; 1 = sequential, results are identical either way)")
		loss         = flag.String("loss", "0,0.05,0.1,0.2", "faults: comma-separated frame-loss rates")
		reorder      = flag.String("reorder", "0,0.1", "faults: comma-separated reorder rates")
		crash        = flag.Int("crash", 0, "faults: scheduled switch crash/restart cycles per trial")
		auditEvery   = flag.Int("audit-every", 1, "faults: invariant-audit period in engine steps")
		storm        = flag.String("storm", "squall", "soak: comma-separated storm profiles ("+strings.Join(faults.StormNames(), "|")+"|all)")
		soakRate     = flag.Float64("soak-rate", 300, "soak: Poisson flow arrival rate (flows per second of virtual time)")
		soakDur      = flag.Duration("soak-duration", 10*time.Second, "soak: virtual-time admission window per trial")
		jsonPath     = flag.String("json", "", "write per-trial metrics to this JSON file")
		tracePath    = flag.String("trace", "", "record a protocol flight-recorder log of the first trial to this file")
		traceFmt     = flag.String("trace-format", "jsonl", "trace export format: jsonl|chrome (chrome://tracing / Perfetto)")
		traceCap     = flag.Int("trace-cap", 0, "flight-recorder ring capacity in events (0 = default 16384)")
		deployBin    = flag.String("deploy-bin", "bin", "deploy: directory holding the controllerd and switchd binaries")
		deployPort   = flag.Int("deploy-port", 18800, "deploy: fabric UDP port base on 127.0.0.1")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile   = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()
	if *traceFmt != "jsonl" && *traceFmt != "chrome" {
		fmt.Fprintf(os.Stderr, "unknown -trace-format %q (want jsonl|chrome)\n", *traceFmt)
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			runtime.GC() // flush dead objects so the profile shows live state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail(err)
			}
		}()
	}

	systems, err := parseSystems(*systemsSel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Flag validation: every value-carrying knob is checked up front so a
	// typo fails fast with the valid choices instead of deep in a run.
	if *scaleFlows < 1 || *scaleFlows > 5000 {
		fmt.Fprintf(os.Stderr, "-scale-flows %d out of range: want a positive flow count in [1,5000]\n", *scaleFlows)
		os.Exit(2)
	}
	if *topoSel != "all" {
		if _, ok := lookupTopo(*topoSel); !ok {
			fmt.Fprintf(os.Stderr, "unknown -topo %q (valid values: %s|all)\n", *topoSel, validTopos())
			os.Exit(2)
		}
	}
	if *arrivalRate <= 0 {
		fmt.Fprintf(os.Stderr, "-arrival-rate %v must be a positive rate (flows per second of virtual time)\n", *arrivalRate)
		os.Exit(2)
	}
	if *liveFlows <= 0 {
		fmt.Fprintf(os.Stderr, "-live-flows %d must be a positive flow population\n", *liveFlows)
		os.Exit(2)
	}
	if *churnDur <= 0 {
		fmt.Fprintf(os.Stderr, "-churn-duration %v must be a positive virtual-time window\n", *churnDur)
		os.Exit(2)
	}
	lossRates, err := parseRates(*loss)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-loss %q: %v (want comma-separated rates in [0,1])\n", *loss, err)
		os.Exit(2)
	}
	reorderRates, err := parseRates(*reorder)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-reorder %q: %v (want comma-separated rates in [0,1])\n", *reorder, err)
		os.Exit(2)
	}
	if *crash < 0 {
		fmt.Fprintf(os.Stderr, "-crash %d must be a non-negative crash/restart cycle count\n", *crash)
		os.Exit(2)
	}
	storms := parseStorms(*storm)
	for _, name := range storms {
		if _, ok := faults.LookupStorm(name); !ok {
			fmt.Fprintf(os.Stderr, "unknown -storm %q (valid values: %s|all)\n",
				name, strings.Join(faults.StormNames(), "|"))
			os.Exit(2)
		}
	}
	if *soakRate <= 0 {
		fmt.Fprintf(os.Stderr, "-soak-rate %v must be a positive rate (flows per second of virtual time)\n", *soakRate)
		os.Exit(2)
	}
	if *soakDur <= 0 {
		fmt.Fprintf(os.Stderr, "-soak-duration %v must be a positive virtual-time window\n", *soakDur)
		os.Exit(2)
	}

	opt := experiments.RunOptions{Workers: *workers, Systems: systems, Shards: *shards}
	var topt *trace.Options
	if *tracePath != "" {
		topt = &trace.Options{Cap: *traceCap}
		opt.Trace = topt
	}
	var trials []p4update.TrialResult
	var traceRec *trace.Recorder

	start := time.Now()
	switch *exp {
	case "fig2":
		traceRec = runFig2(*seed, topt, *shards)
	case "fig4":
		runFig4(*runs, *seed)
	case "fig7":
		trials = append(trials, runFig7(*runs, *seed, *cdf, opt)...)
	case "fig7six":
		trials = append(trials, runFig7Six(*runs, *seed, opt)...)
	case "fig8":
		trials = append(trials, runFig8(*preps, *seed, opt)...)
	case "scale":
		trials = append(trials, runScale(*scaleFlows, *topoSel, *runs, *seed, *cdf, opt)...)
	case "churn":
		// Churn trials are heavyweight (10^5+ live flows); default to one
		// trial unless -runs was given explicitly.
		trials = append(trials, runChurn(*topoSel, *arrivalRate, *liveFlows, *churnDur, *rerouteEvery, explicitRuns(*runs, 1), *seed, opt)...)
	case "faults":
		trials = append(trials, runFaults(lossRates, reorderRates, *crash, *auditEvery, *runs, *seed, opt)...)
	case "soak":
		// Each soak run is a full system × storm grid; default to one
		// run unless -runs was given explicitly.
		trials = append(trials, runSoak(*topoSel, storms, *soakRate, *soakDur, *auditEvery, explicitRuns(*runs, 1), *seed, opt)...)
	case "deploy":
		// Real-process smoke: forked controllerd + switchd over localhost
		// UDP, controller killed and restarted mid-update, recorded run
		// replay-diffed against the simulated oracle.
		if err := deploy.RunSmoke(deploy.SmokeOptions{BinDir: *deployBin, BasePort: *deployPort, Out: os.Stdout}); err != nil {
			fail(err)
		}
	case "all":
		traceRec = runFig2(*seed, topt, *shards)
		runFig4(*runs, *seed)
		trials = append(trials, runFig7(*runs, *seed, *cdf, opt)...)
		trials = append(trials, runFig8(*preps, *seed, opt)...)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	wall := time.Since(start)
	fmt.Printf("\n(wall-clock %v)\n", wall.Round(time.Millisecond))

	if *jsonPath != "" {
		rep := p4update.NewTrialReport(*exp, opt.Pool().NumWorkers(), wall, trials)
		if err := rep.WriteFile(*jsonPath); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d trial records to %s\n", len(trials), *jsonPath)
	}
	if *tracePath != "" {
		if traceRec == nil {
			// Grid experiments: export the first traced trial (index order
			// is deterministic, so this is always the same trial).
			for _, t := range trials {
				if t.TraceRec != nil {
					traceRec = t.TraceRec
					break
				}
			}
		}
		if traceRec == nil {
			fail(fmt.Errorf("-trace: experiment %q produced no traced trial", *exp))
		}
		if err := writeTrace(*tracePath, *traceFmt, traceRec); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d trace events to %s (%s)\n", traceRec.Recorded(), *tracePath, *traceFmt)
	}
}

// writeTrace exports rec to path in the selected format.
func writeTrace(path, format string, rec *trace.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if format == "chrome" {
		return rec.WriteChrome(f)
	}
	return rec.WriteJSONL(f)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}

// parseSystems resolves the -systems selection against the update-system
// registry. "all" (or empty) keeps the default: every registered primary
// system.
func parseSystems(sel string) ([]experiments.SystemKind, error) {
	sel = strings.TrimSpace(sel)
	if sel == "" || sel == "all" {
		return nil, nil
	}
	var kinds []experiments.SystemKind
	for _, part := range strings.Split(sel, ",") {
		name := strings.TrimSpace(part)
		if name == "" {
			continue
		}
		if _, ok := wiring.Lookup(name); !ok {
			return nil, fmt.Errorf("-systems: unknown update system %q (available systems: %s)",
				name, strings.Join(wiring.AllNames(), ", "))
		}
		kinds = append(kinds, experiments.SystemKind(name))
	}
	return kinds, nil
}

func runFig2(seed int64, topt *trace.Options, shards int) *trace.Recorder {
	fmt.Println("== Fig. 2: inconsistent updates (config (c) before delayed (b)) ==")
	var rec *trace.Recorder
	for _, kind := range []experiments.SystemKind{experiments.KindP4Update, experiments.KindEZSegway} {
		// Only the first (P4Update) run is traced — the exported log
		// covers one trial, like the grid experiments' trial 0.
		var tr *trace.Options
		if kind == experiments.KindP4Update {
			tr = topt
		}
		r, trial, err := experiments.Fig2Sharded(kind, seed, tr, shards)
		if err != nil {
			fail(err)
		}
		if trial != nil {
			rec = trial
		}
		fmt.Print(r)
	}
	fmt.Println()
	return rec
}

func runFig4(runs int, seed int64) {
	r, err := experiments.Fig4(runs, seed)
	if err != nil {
		fail(err)
	}
	fmt.Print(r)
	fmt.Println()
}

func runFig7(runs int, seed int64, cdf bool, opt experiments.RunOptions) []p4update.TrialResult {
	type job struct {
		run  func() (*experiments.Fig7Result, error)
		name string
	}
	jobs := []job{
		{func() (*experiments.Fig7Result, error) {
			return experiments.Fig7SingleFlowOpts(topo.Synthetic, "synthetic (Fig. 7a)", runs, seed, opt)
		}, "fig7a"},
		{func() (*experiments.Fig7Result, error) {
			return experiments.Fig7MultiFlowOpts(func() *topo.Topology { return topo.FatTree(4) },
				"fat-tree K=4 (Fig. 7b)", true, runs, seed, opt)
		}, "fig7b"},
		{func() (*experiments.Fig7Result, error) {
			return experiments.Fig7SingleFlowOpts(topo.B4, "B4 (Fig. 7c)", runs, seed, opt)
		}, "fig7c"},
		{func() (*experiments.Fig7Result, error) {
			return experiments.Fig7MultiFlowOpts(topo.B4, "B4 (Fig. 7d)", false, runs, seed, opt)
		}, "fig7d"},
		{func() (*experiments.Fig7Result, error) {
			return experiments.Fig7SingleFlowOpts(topo.Internet2, "Internet2 (Fig. 7e)", runs, seed, opt)
		}, "fig7e"},
		{func() (*experiments.Fig7Result, error) {
			return experiments.Fig7MultiFlowOpts(topo.Internet2, "Internet2 (Fig. 7f)", false, runs, seed, opt)
		}, "fig7f"},
	}
	var trials []p4update.TrialResult
	for _, j := range jobs {
		r, err := j.run()
		if err != nil {
			fail(fmt.Errorf("%s: %w", j.name, err))
		}
		fmt.Print(r)
		if cdf {
			fmt.Print(r.CDFSeries())
		}
		fmt.Println()
		trials = append(trials, r.Trials...)
	}
	return trials
}

// runFig7Six runs the optimality-gap evaluation on B4: the Fig. 7c/7d
// scenarios with every registered system (or the -systems selection),
// the commit-round tracker attached, and each trial scored against the
// offline oracle's round bound.
func runFig7Six(runs int, seed int64, opt experiments.RunOptions) []p4update.TrialResult {
	type job struct {
		run  func() (*experiments.OptGapResult, error)
		name string
	}
	jobs := []job{
		{func() (*experiments.OptGapResult, error) {
			return experiments.OptGapSingleFlow(topo.B4, "B4", runs, seed, opt)
		}, "fig7six-single"},
		{func() (*experiments.OptGapResult, error) {
			return experiments.OptGapMultiFlow(topo.B4, "B4", runs, seed, opt)
		}, "fig7six-multi"},
	}
	var trials []p4update.TrialResult
	for _, j := range jobs {
		r, err := j.run()
		if err != nil {
			fail(fmt.Errorf("%s: %w", j.name, err))
		}
		fmt.Print(r)
		fmt.Println()
		trials = append(trials, r.Trials...)
	}
	return trials
}

// topoBuilder is one named topology the -topo flag can select.
type topoBuilder struct {
	name    string
	label   string
	mk      func() *topo.Topology
	fatTree bool
}

// topoBuilders lists the selectable topologies in flag-listing order.
var topoBuilders = []topoBuilder{
	{"fattree4", "fat-tree K=4", func() *topo.Topology { return topo.FatTree(4) }, true},
	{"fattree8", "fat-tree K=8", func() *topo.Topology { return topo.FatTree(8) }, true},
	{"fattree16", "fat-tree K=16", func() *topo.Topology { return topo.FatTree(16) }, true},
	{"fattree32", "fat-tree K=32", func() *topo.Topology { return topo.FatTree(32) }, true},
	{"b4", "B4", topo.B4, false},
	{"internet2", "Internet2", topo.Internet2, false},
}

// lookupTopo resolves a -topo value against the builder table.
func lookupTopo(name string) (topoBuilder, bool) {
	for _, tb := range topoBuilders {
		if tb.name == name {
			return tb, true
		}
	}
	return topoBuilder{}, false
}

// validTopos renders the selectable topology names for flag help and
// validation errors.
func validTopos() string {
	names := make([]string, len(topoBuilders))
	for i, tb := range topoBuilders {
		names[i] = tb.name
	}
	return strings.Join(names, "|")
}

// runScale runs the many-flow scale experiment (Fig7ManyFlows): nFlows
// simultaneous flow updates per trial on the selected topologies.
func runScale(nFlows int, topoSel string, runs int, seed int64, cdf bool, opt experiments.RunOptions) []p4update.TrialResult {
	var jobs []topoBuilder
	if topoSel == "all" {
		// The historical default pair: one fat-tree, one WAN.
		fe, _ := lookupTopo("fattree8")
		b4, _ := lookupTopo("b4")
		jobs = []topoBuilder{fe, b4}
	} else {
		tb, ok := lookupTopo(topoSel)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown -topo %q (valid values: %s|all)\n", topoSel, validTopos())
			os.Exit(2)
		}
		jobs = []topoBuilder{tb}
	}
	var trials []p4update.TrialResult
	for _, j := range jobs {
		r, err := experiments.Fig7ManyFlowsOpts(j.mk, j.label, j.fatTree, nFlows, runs, seed, opt)
		if err != nil {
			fail(fmt.Errorf("scale %s: %w", j.label, err))
		}
		fmt.Print(r)
		if cdf {
			fmt.Print(r.CDFSeries())
		}
		fmt.Println()
		trials = append(trials, r.Trials...)
	}
	return trials
}

// runChurn runs the streaming churn scenario: a sustained Poisson
// arrival/departure stream with continuous reroute waves on the
// selected topology (default fat-tree K=16, the headline benchmark).
func runChurn(topoSel string, rate float64, live int, dur, rerouteEvery time.Duration, runs int, seed int64, opt experiments.RunOptions) []p4update.TrialResult {
	if topoSel == "all" {
		topoSel = "fattree16"
	}
	tb, ok := lookupTopo(topoSel)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown -topo %q (valid values: %s|all)\n", topoSel, validTopos())
		os.Exit(2)
	}
	co := experiments.DefaultChurnOpts()
	co.ArrivalRate = rate
	co.MeanLifetime = time.Duration(float64(live) / rate * float64(time.Second))
	co.Duration = dur
	co.RerouteEvery = rerouteEvery
	co.EdgeOnly = tb.fatTree
	r, err := experiments.RunChurn(tb.mk, tb.label, runs, seed, co, opt)
	if err != nil {
		fail(fmt.Errorf("churn %s: %w", tb.label, err))
	}
	fmt.Print(r)
	fmt.Println()
	return r.Trials
}

// runFaults runs the deterministic chaos sweep: loss × reorder fault
// cells across all three systems with the continuous invariant auditor
// attached. The rate lists arrive pre-validated from the flag block.
func runFaults(lossRates, reorderRates []float64, crash, auditEvery, runs int, seed int64, opt experiments.RunOptions) []p4update.TrialResult {
	r, err := experiments.FaultSweep(lossRates, reorderRates, crash, auditEvery, runs, seed, opt)
	if err != nil {
		fail(fmt.Errorf("faults: %w", err))
	}
	fmt.Print(r)
	fmt.Println()
	return r.Trials
}

// runSoak runs the fabric-operator soak scenario: streaming churn
// sustained under the selected storm profiles with continuous invariant
// audits and per-trial SLO reports. Trials whose report records an
// invariant violation get their flight-recorder ring dumped for
// post-mortem.
func runSoak(topoSel string, storms []string, rate float64, dur time.Duration, auditEvery, runs int, seed int64, opt experiments.RunOptions) []p4update.TrialResult {
	if topoSel == "all" {
		topoSel = "b4"
	}
	tb, ok := lookupTopo(topoSel)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown -topo %q (valid values: %s|all)\n", topoSel, validTopos())
		os.Exit(2)
	}
	so := experiments.DefaultSoakOpts()
	so.Churn.ArrivalRate = rate
	so.Churn.Duration = dur
	so.Churn.EdgeOnly = tb.fatTree
	so.Profiles = storms
	if flagGiven("audit-every") {
		so.AuditEvery = auditEvery
	}
	r, err := experiments.RunSoak(tb.mk, tb.label, runs, seed, so, opt)
	if err != nil {
		fail(fmt.Errorf("soak %s: %w", tb.label, err))
	}
	fmt.Print(r)
	fmt.Println()
	for i, t := range r.Trials {
		rep := r.Reports[i]
		if t.Failed || rep == nil || rep.Violations.Total == 0 || t.TraceRec == nil {
			continue
		}
		path := "postmortem-" + strings.ReplaceAll(t.Label, "/", "_") + ".jsonl"
		if err := writeTrace(path, "jsonl", t.TraceRec); err != nil {
			fail(fmt.Errorf("soak post-mortem %s: %w", t.Label, err))
		}
		fmt.Printf("post-mortem: %s recorded %d invariant violations; wrote trailing %d events to %s\n",
			t.Label, rep.Violations.Total, t.TraceRec.Recorded(), path)
	}
	return r.Trials
}

// parseStorms splits the -storm selection; "all" expands to every
// built-in profile.
func parseStorms(s string) []string {
	s = strings.TrimSpace(s)
	if s == "all" {
		return faults.StormNames()
	}
	var names []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			names = append(names, part)
		}
	}
	return names
}

// flagGiven reports whether the named flag was set explicitly on the
// command line.
func flagGiven(name string) bool {
	given := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			given = true
		}
	})
	return given
}

// explicitRuns returns the -runs value when it was given explicitly and
// def otherwise — heavyweight scenarios (churn, soak) default to a
// single run instead of the figure-scale 30.
func explicitRuns(runs, def int) int {
	if flagGiven("runs") {
		return runs
	}
	return def
}

// parseRates parses a comma-separated list of [0,1] rates.
func parseRates(s string) ([]float64, error) {
	var rates []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, err
		}
		if v < 0 || v > 1 {
			return nil, fmt.Errorf("rate %v out of [0,1]", v)
		}
		rates = append(rates, v)
	}
	return rates, nil
}

func runFig8(updates int, seed int64, opt experiments.RunOptions) []p4update.TrialResult {
	var trials []p4update.TrialResult
	for _, congestion := range []bool{false, true} {
		n := updates
		if congestion && n > 200 {
			// The dependency-graph recomputation makes paper-scale runs
			// slow; 200 updates give the same ratio statistics.
			n = 200
		}
		r, err := experiments.Fig8Opts(congestion, n, 30, seed, opt)
		if err != nil {
			fail(err)
		}
		fmt.Print(r)
		fmt.Println()
		trials = append(trials, r.Trials...)
	}
	return trials
}
