// Command p4update regenerates the evaluation of the P4Update paper
// (CoNEXT '21): the inconsistent-update demonstration (Fig. 2), the
// fast-forward demonstration (Fig. 4), the total-update-time CDFs
// (Fig. 7a–f) and the control-plane preparation-time ratios (Fig. 8a/b).
//
// Usage:
//
//	p4update -exp all            # everything, paper-scale runs
//	p4update -exp fig7 -runs 10  # just Fig. 7 with 10 runs per series
//	p4update -exp fig7 -cdf      # additionally dump CDF rows for plotting
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"p4update/internal/experiments"
	"p4update/internal/topo"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment: fig2|fig4|fig7|fig8|all")
		runs  = flag.Int("runs", 30, "runs per series (the paper uses 30)")
		preps = flag.Int("updates", 1000, "updates per Fig. 8 run (the paper uses 1000)")
		seed  = flag.Int64("seed", 1, "base simulation seed")
		cdf   = flag.Bool("cdf", false, "dump full CDF series for plotting")
	)
	flag.Parse()

	start := time.Now()
	switch *exp {
	case "fig2":
		runFig2(*seed)
	case "fig4":
		runFig4(*runs, *seed)
	case "fig7":
		runFig7(*runs, *seed, *cdf)
	case "fig8":
		runFig8(*preps, *seed)
	case "all":
		runFig2(*seed)
		runFig4(*runs, *seed)
		runFig7(*runs, *seed, *cdf)
		runFig8(*preps, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	fmt.Printf("\n(wall-clock %v)\n", time.Since(start).Round(time.Millisecond))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}

func runFig2(seed int64) {
	fmt.Println("== Fig. 2: inconsistent updates (config (c) before delayed (b)) ==")
	for _, kind := range []experiments.SystemKind{experiments.KindP4Update, experiments.KindEZSegway} {
		r, err := experiments.Fig2(kind, seed)
		if err != nil {
			fail(err)
		}
		fmt.Print(r)
	}
	fmt.Println()
}

func runFig4(runs int, seed int64) {
	r, err := experiments.Fig4(runs, seed)
	if err != nil {
		fail(err)
	}
	fmt.Print(r)
	fmt.Println()
}

func runFig7(runs int, seed int64, cdf bool) {
	type job struct {
		run  func() (*experiments.Fig7Result, error)
		name string
	}
	jobs := []job{
		{func() (*experiments.Fig7Result, error) {
			return experiments.Fig7SingleFlow(topo.Synthetic, "synthetic (Fig. 7a)", runs, seed)
		}, "fig7a"},
		{func() (*experiments.Fig7Result, error) {
			return experiments.Fig7MultiFlow(func() *topo.Topology { return topo.FatTree(4) },
				"fat-tree K=4 (Fig. 7b)", true, runs, seed)
		}, "fig7b"},
		{func() (*experiments.Fig7Result, error) {
			return experiments.Fig7SingleFlow(topo.B4, "B4 (Fig. 7c)", runs, seed)
		}, "fig7c"},
		{func() (*experiments.Fig7Result, error) {
			return experiments.Fig7MultiFlow(topo.B4, "B4 (Fig. 7d)", false, runs, seed)
		}, "fig7d"},
		{func() (*experiments.Fig7Result, error) {
			return experiments.Fig7SingleFlow(topo.Internet2, "Internet2 (Fig. 7e)", runs, seed)
		}, "fig7e"},
		{func() (*experiments.Fig7Result, error) {
			return experiments.Fig7MultiFlow(topo.Internet2, "Internet2 (Fig. 7f)", false, runs, seed)
		}, "fig7f"},
	}
	for _, j := range jobs {
		r, err := j.run()
		if err != nil {
			fail(fmt.Errorf("%s: %w", j.name, err))
		}
		fmt.Print(r)
		if cdf {
			fmt.Print(r.CDFSeries())
		}
		fmt.Println()
	}
}

func runFig8(updates int, seed int64) {
	for _, congestion := range []bool{false, true} {
		n := updates
		if congestion && n > 200 {
			// The dependency-graph recomputation makes paper-scale runs
			// slow; 200 updates give the same ratio statistics.
			n = 200
		}
		r, err := experiments.Fig8(congestion, n, 30, seed)
		if err != nil {
			fail(err)
		}
		fmt.Print(r)
		fmt.Println()
	}
}
