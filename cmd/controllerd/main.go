// Command controllerd runs the P4Update controller — the unmodified
// internal/controlplane planner and tracker — as a real process
// speaking the internal/transport UDP framing. It persists a
// write-ahead record of the in-flight update; a restarted incarnation
// re-syncs from disk plus the live switches' state reports and resends
// only what is still unacknowledged. On SIGTERM it dumps its flight
// recording for the replay-diff oracle check.
//
// Usage:
//
//	controllerd -base-port 18800 -state controller.json -trace ctl.trace.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"p4update/internal/deploy"
)

func main() {
	var (
		basePort = flag.Int("base-port", 18800, "fabric port base (controller = base, switch i = base+1+i)")
		state    = flag.String("state", "", "write-ahead state file (empty disables persistence)")
		tracef   = flag.String("trace", "", "flight-recorder JSONL dump written on exit")
	)
	flag.Parse()

	scn := deploy.Fig2Scenario()
	g, err := scn.Topology()
	if err != nil {
		fail(err)
	}
	conn, err := deploy.ListenLocal(*basePort)
	if err != nil {
		fail(err)
	}
	d, err := deploy.NewControllerDaemon(deploy.ControllerConfig{
		Scn:       scn,
		Conn:      conn,
		Peers:     deploy.PeerAddrs(*basePort, g.NumNodes()),
		StateFile: *state,
	})
	if err != nil {
		fail(err)
	}
	d.Start()
	fmt.Printf("controllerd: %s %d on %s\n", deploy.MarkerUp, d.Epoch(), conn.LocalAddr())

	go func() {
		<-d.Pushed()
		fmt.Println(deploy.MarkerPushed)
	}()
	go func() {
		<-d.Completed()
		fmt.Println(deploy.MarkerCompleted)
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	<-sig
	d.Stop()
	if *tracef != "" {
		fh, err := os.Create(*tracef)
		if err != nil {
			fail(err)
		}
		if err := d.WriteTrace(fh); err != nil {
			fail(err)
		}
		fh.Close()
	}
	fmt.Println("controllerd: stopped")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "controllerd:", err)
	os.Exit(1)
}
