// Command switchd runs one P4Update switch — the unmodified
// internal/core verification logic under internal/dataplane — as a real
// process speaking the internal/transport UDP framing. It bootstraps
// from its persisted last-known-good rules, keeps forwarding through
// controller outages, and dumps its flight recording on SIGTERM for the
// replay-diff oracle check.
//
// Usage:
//
//	switchd -node 2 -base-port 18800 -state sw2.json -trace sw2.trace.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"p4update/internal/deploy"
	"p4update/internal/topo"
)

func main() {
	var (
		node     = flag.Int("node", -1, "switch node ID this process owns")
		basePort = flag.Int("base-port", 18800, "fabric port base (controller = base, switch i = base+1+i)")
		state    = flag.String("state", "", "last-known-good state file (empty disables persistence)")
		tracef   = flag.String("trace", "", "flight-recorder JSONL dump written on exit")
	)
	flag.Parse()

	scn := deploy.Fig2Scenario()
	g, err := scn.Topology()
	if err != nil {
		fail(err)
	}
	if *node < 0 || *node >= g.NumNodes() {
		fail(fmt.Errorf("-node %d out of range (fabric has %d switches)", *node, g.NumNodes()))
	}
	conn, err := deploy.ListenLocal(*basePort + 1 + *node)
	if err != nil {
		fail(err)
	}
	d, err := deploy.NewSwitch(deploy.SwitchConfig{
		Node:      topo.NodeID(*node),
		Scn:       scn,
		Conn:      conn,
		Peers:     deploy.PeerAddrs(*basePort, g.NumNodes()),
		StateFile: *state,
	})
	if err != nil {
		fail(err)
	}
	d.Start()
	fmt.Printf("switchd: node %d %s %d on %s\n", *node, deploy.MarkerUp, d.Epoch(), conn.LocalAddr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	<-sig
	d.Stop()
	if *tracef != "" {
		fh, err := os.Create(*tracef)
		if err != nil {
			fail(err)
		}
		if err := d.WriteTrace(fh); err != nil {
			fail(err)
		}
		fh.Close()
	}
	fmt.Printf("switchd: node %d stopped\n", *node)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "switchd:", err)
	os.Exit(1)
}
