package p4update_test

import (
	"os"
	"testing"
	"time"

	"p4update/internal/experiments"
	"p4update/internal/topo"
)

// headlineChurnOpts is the BENCH_churn configuration: fat-tree K=16
// (320 switches), 12k arrivals/s over a 25 s admission window with a
// ~9.6 s mean lifetime, peaking past 10^5 live flows with a reroute
// wave every 50 ms of virtual time.
func headlineChurnOpts() experiments.ChurnOpts {
	co := experiments.DefaultChurnOpts()
	co.ArrivalRate = 12_000
	// Aim the asymptote above the target: the population approaches
	// rate*lifetime as 1-e^(-T/lifetime), so a 25 s window reaches ~93%
	// of it; 115k asymptotic puts the realized peak past 10^5.
	lifetime := float64(115_000) / 12_000
	co.MeanLifetime = time.Duration(lifetime * float64(time.Second))
	co.Duration = 25 * time.Second
	co.RerouteEvery = 50 * time.Millisecond
	co.EdgeOnly = true
	return co
}

// TestWriteChurnBench regenerates BENCH_churn.json: the headline
// streaming-churn run on fat-tree K=16. Gated behind
// P4UPDATE_CHURN_BENCH=1 (several minutes of work); `make bench-churn`
// sets it.
func TestWriteChurnBench(t *testing.T) {
	if os.Getenv("P4UPDATE_CHURN_BENCH") == "" {
		t.Skip("set P4UPDATE_CHURN_BENCH=1 (make bench-churn) to regenerate BENCH_churn.json")
	}
	co := headlineChurnOpts()
	start := time.Now()
	res, err := experiments.RunChurn(func() *topo.Topology { return topo.FatTree(16) },
		"fat-tree K=16", 1, 1, co, experiments.RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	r := res.Trials[0]
	if r.Failed {
		t.Fatalf("headline churn trial failed: %s", r.Err)
	}
	v := r.Values
	if v["peak_live"] < 100_000 {
		t.Fatalf("peak live %v below the 10^5 headline target", v["peak_live"])
	}
	if v["flow_slots"] > v["peak_live"] {
		t.Fatalf("flow slots %v exceed peak live %v", v["flow_slots"], v["peak_live"])
	}
	type result struct {
		Topology         string  `json:"topology"`
		Switches         int     `json:"switches"`
		Arrivals         int     `json:"arrivals"`
		Departures       int     `json:"departures"`
		PeakLive         int     `json:"peak_live_flows"`
		FlowSlots        int     `json:"flow_slots"`
		Waves            int     `json:"reroute_waves"`
		UpdatesCompleted int     `json:"updates_completed"`
		UpdateP50Ms      float64 `json:"update_p50_ms"`
		UpdateP99Ms      float64 `json:"update_p99_ms"`
		UpdateMeanMs     float64 `json:"update_mean_ms"`
		BatchFrames      int     `json:"uim_batch_frames"`
		BatchedUIMs      int     `json:"uim_batched"`
		SustainedFlowsPS float64 `json:"sustained_flows_per_sec_wall"`
		VirtualSeconds   float64 `json:"virtual_seconds"`
		Events           uint64  `json:"events"`
		WallClock        string  `json:"wall_clock"`
	}
	report := struct {
		Name        string    `json:"name"`
		Description string    `json:"description"`
		Host        benchHost `json:"host"`
		Result      result    `json:"result"`
	}{
		Name: "streaming-churn",
		Description: "TestWriteChurnBench: one streaming-churn trial on fat-tree K=16 " +
			"(320 switches) — Poisson arrivals at 12k flows/s of virtual time over a " +
			"25 s window (mean lifetime 9.58 s, peaking past 10^5 live flows), " +
			"one single-link latency perturbation every 50 ms driving batched reroute " +
			"waves through P4Update. Live-flow slot recycling bounds the interning " +
			"table by peak live (not historical) flows; the path oracle repairs its " +
			"cache incrementally per perturbation. Regenerate with make bench-churn.",
		Host: currentBenchHost(),
		Result: result{
			Topology:         "fat-tree K=16",
			Switches:         topo.FatTree(16).NumNodes(),
			Arrivals:         int(v["arrivals"]),
			Departures:       int(v["departures"]),
			PeakLive:         int(v["peak_live"]),
			FlowSlots:        int(v["flow_slots"]),
			Waves:            int(v["waves"]),
			UpdatesCompleted: int(v["updates_completed"]),
			UpdateP50Ms:      v["update_p50_ms"],
			UpdateP99Ms:      v["update_p99_ms"],
			UpdateMeanMs:     v["update_mean_ms"],
			BatchFrames:      int(v["batch_frames"]),
			BatchedUIMs:      int(v["batched_uims"]),
			SustainedFlowsPS: v["wall_flows_per_sec"],
			VirtualSeconds:   r.VirtualTime.Seconds(),
			Events:           r.Events,
			WallClock:        wall.Round(time.Millisecond).String(),
		},
	}
	if err := writeBenchJSON("BENCH_churn.json", report); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_churn.json: peak_live=%d slots=%d updates=%d p50=%.2fms p99=%.2fms wall=%v",
		report.Result.PeakLive, report.Result.FlowSlots, report.Result.UpdatesCompleted,
		report.Result.UpdateP50Ms, report.Result.UpdateP99Ms, wall)
}
