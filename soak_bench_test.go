package p4update_test

import (
	"os"
	"testing"
	"time"

	"p4update/internal/experiments"
	"p4update/internal/soak"
	"p4update/internal/topo"
)

// headlineSoakOpts is the BENCH_soak configuration: the fabric-operator
// scenario on B4 at 600 steady-state flows for 30 virtual seconds per
// cell, swept across all three storm profiles for all three systems.
func headlineSoakOpts() experiments.SoakOpts {
	so := experiments.DefaultSoakOpts()
	so.Churn.ArrivalRate = 300
	so.Churn.MeanLifetime = 2 * time.Second
	so.Churn.Duration = 30 * time.Second
	so.Churn.Drain = 3 * time.Second
	so.Profiles = []string{"calm", "squall", "hurricane"}
	return so
}

// TestWriteSoakBench regenerates BENCH_soak.json: the headline soak grid
// — every system under every storm profile with per-fault-class recovery
// times and retrigger budget burn. Gated behind P4UPDATE_SOAK_BENCH=1
// (minutes of work); `make bench-soak` sets it.
func TestWriteSoakBench(t *testing.T) {
	if os.Getenv("P4UPDATE_SOAK_BENCH") == "" {
		t.Skip("set P4UPDATE_SOAK_BENCH=1 (make bench-soak) to regenerate BENCH_soak.json")
	}
	so := headlineSoakOpts()
	start := time.Now()
	res, err := experiments.RunSoak(topo.B4, "B4", 1, 1, so, experiments.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)

	type cell struct {
		System          string          `json:"system"`
		Storm           string          `json:"storm"`
		AvailabilityPct float64         `json:"availability_pct"`
		Triggered       uint64          `json:"updates_triggered"`
		Completed       uint64          `json:"updates_completed"`
		Confirming      uint64          `json:"confirming"`
		CrashOrphaned   uint64          `json:"crash_orphaned"`
		Stalled         uint64          `json:"stalled"`
		P50Ms           float64         `json:"update_p50_ms"`
		P99Ms           float64         `json:"update_p99_ms"`
		P999Ms          float64         `json:"update_p999_ms"`
		Retriggers      uint64          `json:"retriggers"`
		ProbeRetries    uint64          `json:"probe_retries"`
		BudgetBurnPct   float64         `json:"budget_burn_pct"`
		Violations      uint64          `json:"violations_total"`
		Classes         []soak.ClassSLO `json:"fault_classes"`
		VirtualSeconds  float64         `json:"virtual_seconds"`
		Events          uint64          `json:"events"`
	}
	cells := make([]cell, 0, len(res.Trials))
	for i, tr := range res.Trials {
		if tr.Failed {
			t.Fatalf("%s failed: %s", tr.Label, tr.Err)
		}
		rep := res.Reports[i]
		if rep == nil {
			t.Fatalf("%s: no operator report", tr.Label)
		}
		if rep.System == "p4update" && (rep.AvailabilityPct < 99 || rep.Stalled > 0 || rep.Violations.Total > 0) {
			t.Fatalf("%s: p4update below the soak SLO: avail=%.3f%% stalled=%d violations=%d",
				tr.Label, rep.AvailabilityPct, rep.Stalled, rep.Violations.Total)
		}
		cells = append(cells, cell{
			System:          rep.System,
			Storm:           rep.Profile,
			AvailabilityPct: rep.AvailabilityPct,
			Triggered:       rep.UpdatesTriggered,
			Completed:       rep.UpdatesCompleted,
			Confirming:      rep.Confirming,
			CrashOrphaned:   rep.CrashOrphaned,
			Stalled:         rep.Stalled,
			P50Ms:           rep.Latency.P50Ms,
			P99Ms:           rep.Latency.P99Ms,
			P999Ms:          rep.Latency.P999Ms,
			Retriggers:      rep.Retriggers,
			ProbeRetries:    rep.ProbeRetries,
			BudgetBurnPct:   rep.BudgetBurnPct,
			Violations:      rep.Violations.Total,
			Classes:         rep.Classes,
			VirtualSeconds:  tr.VirtualTime.Seconds(),
			Events:          tr.Events,
		})
	}
	report := struct {
		Name        string    `json:"name"`
		Description string    `json:"description"`
		Host        benchHost `json:"host"`
		Cells       []cell    `json:"cells"`
		WallClock   string    `json:"wall_clock"`
	}{
		Name: "fault-storm-soak",
		Description: "TestWriteSoakBench: the fabric-operator soak grid on B4 — " +
			"streaming churn (300 flows/s, ~600 live) sustained for 30 virtual " +
			"seconds per cell while a seeded storm scheduler fires recurring " +
			"loss/reorder/corrupt bursts, switch crash/restore cycles, and " +
			"controller partition windows (profiles calm/squall/hurricane), with " +
			"the invariant auditor sweeping continuously. Each cell reports the " +
			"operator SLOs: audited availability, completion quantiles, crash-" +
			"orphan accounting, per-fault-class recovery time, and §11 retrigger " +
			"budget burn. Regenerate with make bench-soak.",
		Host:      currentBenchHost(),
		Cells:     cells,
		WallClock: wall.Round(time.Millisecond).String(),
	}
	if err := writeBenchJSON("BENCH_soak.json", report); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_soak.json: %d cells, wall=%v", len(cells), wall)
}
