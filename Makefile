GO ?= go

.PHONY: all build vet lint test race bench bench-smoke bench-sharded bench-churn bench-soak sharded-smoke churn-smoke soak-smoke fuzz-smoke faults-smoke fig7-six daemons deploy-smoke check clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint gates on vet plus canonical formatting: any file gofmt would
# rewrite fails the build with its name printed.
lint: vet
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

test:
	$(GO) test ./...

# The trial runner is the concurrent subsystem; the sim and topo
# packages carry the pooled engine and the shared path oracle, the
# plancache serves all trial workers concurrently, so all four run
# under the race detector — as do faults and audit, whose per-trial
# injectors and auditors execute inside concurrently sharded trials,
# and trace, whose per-trial recorders must stay disjoint across
# workers. The wiring registry and the three registry-added systems run
# under the detector too: their coordinators execute inside concurrently
# sharded trials and their plan caches are shared across workers. The
# sim, topo and wiring packages cover the sharded event engine, its
# region partitioner and its attach/fallback gate; the second line adds
# the end-to-end sequential-vs-sharded equality tests, whose region
# workers genuinely race without the window/barrier discipline.
race:
	$(GO) test -race ./internal/runner/... ./internal/sim/... ./internal/topo/... ./internal/plancache/... ./internal/faults/... ./internal/audit/... ./internal/trace/... ./internal/wiring/... ./internal/localverify/... ./internal/ppcu/... ./internal/optoracle/... ./internal/dataplane/... ./internal/controlplane/... ./internal/traffic/... ./internal/packet/... ./internal/soak/... ./internal/transport/... ./internal/replaydiff/... ./internal/deploy/...
	$(GO) test -race -run 'Sharded|Churn|Soak' ./internal/experiments/

# Hot-path microbenchmarks (engine schedule/step) plus the end-to-end
# Fig. 7 trial benchmark. Results are tracked in BENCH_hotpath.json and
# BENCH_shared_plan.json.
bench:
	$(GO) test -bench=BenchmarkEngine -benchmem -run=^$$ ./internal/sim/
	$(GO) test -bench=. -benchmem -run=^$$ .

# Quick regression sweep of the perf-critical benchmarks (10 iterations
# each): the pooled engine hot path, one Fig. 7 trial, the shared-vs-
# per-trial setup comparison, and a 500-flow scale trial.
bench-smoke:
	$(GO) test -bench=BenchmarkEngine -benchmem -benchtime=10x -run=^$$ ./internal/sim/
	$(GO) test -bench='BenchmarkFig7Trial|BenchmarkTrialSetup|BenchmarkManyFlowsTrial' -benchmem -benchtime=10x -run=^$$ .

# Sharded-engine benchmark: one K=16 scale trial per shard count
# (sequential vs 2/4/8 region workers). Results are tracked in
# BENCH_sharded_engine.json.
bench-sharded:
	$(GO) test -bench=BenchmarkManyFlowsSharded -benchmem -benchtime=20x -run=^$$ .

# Two-region-worker Fig. 7 smoke: the full six-subfigure grid on the
# sharded engine (scenarios its fallback matrix keeps sequential run
# there), exercising the window/barrier runtime end to end.
sharded-smoke:
	$(GO) run ./cmd/p4update -exp fig7 -runs 1 -shards 2

# Fixed-seed short streaming-churn run with the continuous invariant
# auditor attached (zero audit violations asserted in-test), plus a
# small CLI churn run exercising the -exp churn path end to end.
churn-smoke:
	$(GO) test -run 'TestChurnSmoke|TestChurnAuditSmoke' -v ./internal/experiments/
	$(GO) run ./cmd/p4update -exp churn -topo fattree4 -arrival-rate 2000 -live-flows 1000 -churn-duration 2s -reroute-every 25ms

# Headline streaming-churn benchmark: 10^5+ live flows sustained on
# fat-tree K=16 with continuous reroute waves; regenerates
# BENCH_churn.json.
bench-churn:
	P4UPDATE_CHURN_BENCH=1 $(GO) test -run TestWriteChurnBench -v -timeout 30m .

# Fixed-seed soak gate: P4Update must sustain ≥99% availability with
# zero stalls and zero invariant violations under the squall storm
# while at least one baseline degrades (asserted in-test), plus a small
# CLI soak run exercising the -exp soak path end to end.
soak-smoke:
	$(GO) test -run 'TestSoak' -v ./internal/experiments/
	$(GO) run ./cmd/p4update -exp soak -topo b4 -soak-rate 150 -soak-duration 4s -seed 42

# Headline soak benchmark: the full system × storm-profile grid at
# operator scale (long virtual horizon, all three storm profiles);
# regenerates BENCH_soak.json.
bench-soak:
	P4UPDATE_SOAK_BENCH=1 $(GO) test -run TestWriteSoakBench -v -timeout 30m .

# Short native-fuzzing pass over the wire decoder — the surface the
# fault injector's corrupt path hammers in every chaotic trial.
fuzz-smoke:
	$(GO) test -fuzz=FuzzDecode -fuzztime=10s ./internal/packet/

# Quick chaos sweep: all three systems under 10% loss + reorder with
# the invariant auditor sweeping every engine step.
faults-smoke:
	$(GO) run ./cmd/p4update -exp faults -runs 2 -loss 0,0.1 -reorder 0.1 -audit-every 1

# Build the real-process deployment daemons into bin/.
daemons:
	$(GO) build -o bin/controllerd ./cmd/controllerd
	$(GO) build -o bin/switchd ./cmd/switchd

# Real-process integration smoke: forked controllerd + 5× switchd over
# localhost UDP run the fig2 update, the controller is killed and
# restarted mid-update, and every process's flight recording is
# replay-diffed against the simulated oracle (internal/replaydiff).
deploy-smoke: daemons
	$(GO) run ./cmd/p4update -exp deploy -deploy-bin bin

# Six-system optimality-gap smoke: every registered system on B4 with
# the commit-round tracker attached, scored against the offline oracle's
# round bound (fixed seeds; bound violations print in the table).
fig7-six:
	$(GO) run ./cmd/p4update -exp fig7six -runs 3 -seed 1 -workers 4

check: lint build test race sharded-smoke churn-smoke soak-smoke deploy-smoke

clean:
	$(GO) clean ./...
