GO ?= go

.PHONY: all build vet test race bench bench-smoke check clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The trial runner is the concurrent subsystem; the sim and topo
# packages carry the pooled engine and the shared path oracle, the
# plancache serves all trial workers concurrently, so all four run
# under the race detector.
race:
	$(GO) test -race ./internal/runner/... ./internal/sim/... ./internal/topo/... ./internal/plancache/...

# Hot-path microbenchmarks (engine schedule/step) plus the end-to-end
# Fig. 7 trial benchmark. Results are tracked in BENCH_hotpath.json and
# BENCH_shared_plan.json.
bench:
	$(GO) test -bench=BenchmarkEngine -benchmem -run=^$$ ./internal/sim/
	$(GO) test -bench=. -benchmem -run=^$$ .

# Quick regression sweep of the perf-critical benchmarks (10 iterations
# each): the pooled engine hot path, one Fig. 7 trial, the shared-vs-
# per-trial setup comparison, and a 500-flow scale trial.
bench-smoke:
	$(GO) test -bench=BenchmarkEngine -benchmem -benchtime=10x -run=^$$ ./internal/sim/
	$(GO) test -bench='BenchmarkFig7Trial|BenchmarkTrialSetup|BenchmarkManyFlowsTrial' -benchmem -benchtime=10x -run=^$$ .

check: vet build test race

clean:
	$(GO) clean ./...
