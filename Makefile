GO ?= go

.PHONY: all build vet test race bench check clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The trial runner is the concurrent subsystem; the sim and topo
# packages carry the pooled engine and the shared path oracle, so all
# three run under the race detector.
race:
	$(GO) test -race ./internal/runner/... ./internal/sim/... ./internal/topo/...

# Hot-path microbenchmarks (engine schedule/step) plus the end-to-end
# Fig. 7 trial benchmark. Results are tracked in BENCH_hotpath.json.
bench:
	$(GO) test -bench=BenchmarkEngine -benchmem -run=^$$ ./internal/sim/
	$(GO) test -bench=. -benchmem -run=^$$ .

check: vet build test race

clean:
	$(GO) clean ./...
