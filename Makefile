GO ?= go

.PHONY: all build vet test race bench check clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The trial runner is the only concurrent subsystem; run it under the
# race detector.
race:
	$(GO) test -race ./internal/runner/...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

check: vet build test race

clean:
	$(GO) clean ./...
